package onepass

import (
	"fmt"
	"strings"

	"onepass/internal/cluster"
	"onepass/internal/core"
	"onepass/internal/dfs"
	"onepass/internal/disk"
	"onepass/internal/engine"
	"onepass/internal/faults"
	"onepass/internal/gen"
	"onepass/internal/hadoop"
	"onepass/internal/hop"
	"onepass/internal/kv"
	"onepass/internal/metrics"
	"onepass/internal/profile"
	"onepass/internal/resident"
	"onepass/internal/sim"
	"onepass/internal/trace"
	"onepass/internal/workloads"
)

// Engine selects the MapReduce runtime.
type Engine int

// Available engines.
const (
	// Hadoop is the stock sort-merge baseline.
	Hadoop Engine = iota
	// MapReduceOnline is the pipelining HOP baseline.
	MapReduceOnline
	// HashHybrid is the hash engine with blocking Hybrid Hash grouping.
	HashHybrid
	// HashIncremental is the hash engine with incremental per-key states.
	HashIncremental
	// HashHotKey adds the frequent-items sketch for hot-key pinning.
	HashHotKey
	// Resident is the M3R-style in-memory engine: push-only shuffle into
	// resident fold tables, reduce output published as memory-resident DFS
	// files so chained jobs iterate without disk I/O.
	Resident
)

// engineRegistry is the single source of truth for the engine set: String,
// Engines, ParseEngine, and EngineNames all derive from it, and the CLIs and
// the job service validate against it — adding an engine is one entry here
// plus a dispatch case.
var engineRegistry = []struct {
	engine Engine
	name   string
}{
	{Hadoop, "hadoop"},
	{MapReduceOnline, "mapreduce-online"},
	{HashHybrid, "hash-hybrid"},
	{HashIncremental, "hash-incremental"},
	{HashHotKey, "hash-hotkey"},
	{Resident, "resident"},
}

// String implements fmt.Stringer.
func (e Engine) String() string {
	for _, r := range engineRegistry {
		if r.engine == e {
			return r.name
		}
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Engines lists every engine, for sweeps.
func Engines() []Engine {
	out := make([]Engine, len(engineRegistry))
	for i, r := range engineRegistry {
		out[i] = r.engine
	}
	return out
}

// EngineNames lists every engine's String name, in registry order — the
// canonical spelling for CLI flags and usage text.
func EngineNames() []string {
	out := make([]string, len(engineRegistry))
	for i, r := range engineRegistry {
		out[i] = r.name
	}
	return out
}

// ParseEngine resolves an engine by its String name. "hop" is accepted as
// the historical CLI alias for mapreduce-online.
func ParseEngine(name string) (Engine, error) {
	if name == "hop" {
		return MapReduceOnline, nil
	}
	for _, r := range engineRegistry {
		if r.name == name {
			return r.engine, nil
		}
	}
	return 0, fmt.Errorf("onepass: unknown engine %q (valid: %s)",
		name, strings.Join(EngineNames(), ", "))
}

// Re-exported job-building types: jobs and results are shared across all
// engines.
type (
	// Job is a MapReduce job specification.
	Job = engine.Job
	// Result is a completed run's output, metrics, and counters.
	Result = engine.Result
	// CostModel converts measured work into virtual CPU time.
	CostModel = engine.CostModel
	// Emit collects output pairs from user functions.
	Emit = engine.Emit
	// Aggregator is the incremental per-key state contract.
	Aggregator = engine.Aggregator
	// Monoid is the declarative aggregation contract (identity + associative
	// combine); jobs that declare one gain in-node combining on every engine.
	Monoid = kv.Monoid
	// Workload couples a job template with an input generator.
	Workload = workloads.Workload
	// ClickConfig parameterizes the synthetic click log.
	ClickConfig = gen.ClickConfig
	// DocConfig parameterizes the synthetic document collection.
	DocConfig = gen.DocConfig
	// Snapshot is one early answer (HOP snapshots, hot-key early emits).
	Snapshot = engine.Snapshot
	// ProgressPoint is one sample of the progress-vs-accuracy series.
	ProgressPoint = engine.ProgressPoint
	// NodeSeries is one node's sampled CPU/iowait/disk series.
	NodeSeries = engine.NodeSeries
	// TraceSink receives structured trace events during a run.
	TraceSink = trace.Sink
	// TraceLog is the in-memory trace sink with Chrome-trace and Gantt
	// renderers.
	TraceLog = trace.Log
	// Fault is one scheduled injection (node failure, disk slowdown, NIC
	// degradation, or straggler).
	Fault = faults.Fault
	// FaultSchedule is a deterministic set of faults to inject into a run.
	FaultSchedule = faults.Schedule
	// Duration is virtual simulated time (fault offsets, makespans).
	Duration = sim.Duration
)

// Fault kinds, re-exported for building schedules programmatically.
const (
	NodeFailure = faults.NodeFailure
	DiskSlow    = faults.DiskSlow
	NetDegrade  = faults.NetDegrade
	Straggler   = faults.Straggler
)

// ParseFaults parses a comma-separated fault schedule in the CLI grammar
// kind@T[+W]:nN[xF], e.g. "fail@30s:n3,disk-slow@10s+20s:n1x8".
func ParseFaults(s string) (FaultSchedule, error) { return faults.Parse(s) }

// ChaosFaults derives a pseudo-random but fully seed-determined schedule:
// one node failure plus a few degradations within the first 2/3 of horizon.
func ChaosFaults(seed int64, nodes int, horizon sim.Duration) FaultSchedule {
	return faults.Chaos(seed, nodes, horizon)
}

// NewTraceLog returns an empty in-memory trace log to pass as Config.Trace.
func NewTraceLog() *TraceLog { return trace.NewLog() }

// Profiling re-exports: the post-run analyzer and the mergeable histogram
// underneath it.
type (
	// RunProfile is the deterministic post-run analysis: critical path,
	// exact makespan attribution, per-phase skew, shuffle balance, and
	// per-node utilization.
	RunProfile = profile.RunProfile
	// Histogram is the mergeable log-bucketed latency histogram (exact
	// count/sum/min/max, deterministic quantiles, associative Merge).
	Histogram = metrics.Histogram
)

// ComputeProfile analyzes a completed traced run. The run must have been
// traced into log (Config.Trace) — the profiler reconstructs the span DAG
// from it — and fails loudly on span defects or attribution that does not
// tile the makespan.
func ComputeProfile(log *TraceLog, res *Result) (*RunProfile, error) {
	return profile.Compute(log, res)
}

// AttachCounterTracks attaches the standard Perfetto counter tracks to a
// traced run's log before export: the sampled cluster utilization and
// byte-flow series plus in-flight map/reduce task counts.
func AttachCounterTracks(log *TraceLog, res *Result) {
	profile.AttachCounterTracks(log, res)
}

// NewHistogram returns an empty mergeable histogram.
func NewHistogram() *Histogram { return metrics.NewHistogram() }

// Workload constructors (the paper's Table I tasks).
var (
	// Sessionization reorders click logs into per-user sessions.
	Sessionization = workloads.Sessionization
	// PageFrequency counts visits per URL.
	PageFrequency = workloads.PageFrequency
	// PerUserCount counts clicks per user.
	PerUserCount = workloads.PerUserCount
	// WindowedSessionization buckets clicks into fixed event-time windows
	// before sessionizing ("u<user>@<window>") — the sliding-window
	// scenario whose trailing windows are all a delta's appended blocks
	// touch, so incremental re-runs serve closed windows from preserved
	// state. A zero window means workloads.DefaultSessionWindow.
	WindowedSessionization = workloads.WindowedSessionization
	// InvertedIndex builds word -> postings over documents.
	InvertedIndex = workloads.InvertedIndex
	// DefaultClickConfig mirrors the World Cup '98 log's skew.
	DefaultClickConfig = gen.DefaultClickConfig
	// DefaultDocConfig mirrors GOV2's statistics.
	DefaultDocConfig = gen.DefaultDocConfig
)

// Config describes the simulated testbed and engine knobs.
type Config struct {
	// Engine picks the runtime.
	Engine Engine

	// Nodes, CoresPerNode, MemoryPerNode describe the cluster (the paper:
	// 10 nodes, 1 GB task heap).
	Nodes         int
	CoresPerNode  int
	MemoryPerNode int64
	// SSDIntermediate gives each node an SSD for intermediate data
	// (§III.C first experiment).
	SSDIntermediate bool
	// SplitStorageCompute dedicates half the nodes to storage (§III.C
	// second experiment).
	SplitStorageCompute bool

	// BlockSize is the DFS block / map task granularity.
	BlockSize int64
	// Reducers is the number of reduce tasks (0 = 2 per compute node).
	Reducers int
	// MemoryPerTask caps per-task buffers (0 = MemoryPerNode / 4).
	MemoryPerTask int64

	// FanIn is the sort-merge multi-pass factor F.
	FanIn int
	// SpillBuckets / HotKeyCounters / ApproximateEarly tune the hash
	// engine; ChunkBytes / DisableSnapshots tune HOP.
	SpillBuckets     int
	HotKeyCounters   int
	ApproximateEarly bool
	ChunkBytes       int64
	DisableSnapshots bool
	// DisablePush switches the hash engine to pull-only shuffle.
	DisablePush bool
	// DisableMonoid strips the job's declared monoid before dispatch: every
	// engine falls back to its monoid-free path (no derived combiner, no
	// state merging), which must produce byte-identical grouped output —
	// the equivalence axis cmd/check sweeps.
	DisableMonoid bool

	// RetainOutput keeps output pairs on the Result; DiscardOutput drops
	// payloads entirely (sink mode for large benchmark runs).
	//
	// Precedence: job-level settings win. A Job that sets its own
	// MemoryPerTask keeps it, and a Job that sets RetainOutput or
	// DiscardOutput keeps both; the Config values apply only when the job
	// leaves the corresponding fields zero. Run and Cluster.RunJob share
	// these semantics.
	RetainOutput  bool
	DiscardOutput bool

	// Trace, when non-nil, receives every structured event the run emits
	// (task spans, spills, shuffle transfers, early answers, ...). Leaving
	// it nil keeps the run on the zero-cost path and its results
	// byte-identical to untraced ones.
	Trace TraceSink

	// Delta, when non-nil, reroutes Run through the incremental re-run path
	// (RunDelta): prime preserved reduce-side state over the base dataset,
	// apply the delta, re-map only changed blocks, re-fold only affected
	// keys, and return the incremental re-run's Result — byte-identical
	// OutputChecksum to a full re-run over DeltaDataset(data, *Delta,
	// BlockSize) on every delta-capable engine.
	Delta *Delta

	// Faults is the deterministic fault schedule to inject during the run.
	// All engines honor it; the same schedule and input yield byte-identical
	// grouped output with and without faults.
	Faults FaultSchedule

	// Parallelism bounds how many tasks' pure data work (map parse/sort/
	// hash folds, merge passes, combine flushes, reduce scans) may execute
	// on real goroutines concurrently with the event loop. 0 or 1 keeps
	// every closure inline on the simulation thread. Any value yields
	// byte-identical results, traces, and counters — the pool only moves
	// real work off the virtual-time path, never reorders virtual effects.
	Parallelism int

	// Audit arms the runtime invariant audits: end-of-run conservation
	// checks (map output vs shuffle delivery net of combine savings, spill
	// bytes written vs read back, task launch/completion accounting),
	// simulation leak checks (resources held, disk queues, stranded scratch
	// files, live processes), and trace span closure. A violated invariant
	// makes Run/RunJob return an error with node/task attribution alongside
	// the completed Result. The disarmed path costs nothing and audited runs
	// stay byte-identical to unaudited ones.
	Audit bool
}

// DefaultConfig mirrors the paper's testbed at simulation scale.
func DefaultConfig() Config {
	return Config{
		Engine:        Hadoop,
		Nodes:         10,
		CoresPerNode:  4,
		MemoryPerNode: 1 << 30,
		BlockSize:     dfs.DefaultBlockSize,
	}
}

func (c Config) clusterConfig() cluster.Config {
	cc := cluster.DefaultConfig()
	if c.Nodes > 0 {
		cc.Nodes = c.Nodes
	}
	if c.CoresPerNode > 0 {
		cc.CoresPerNode = c.CoresPerNode
	}
	if c.MemoryPerNode > 0 {
		cc.MemoryPerNode = c.MemoryPerNode
	}
	cc.SSDIntermediate = c.SSDIntermediate
	cc.SplitStorage = c.SplitStorageCompute
	cc.DiskProfile = disk.HDD
	return cc
}

// Dataset names an input registered in the simulated DFS.
type Dataset struct {
	Path string
	Size int64
	// Gen produces block contents deterministically.
	Gen func(block int, size int64) []byte
	// ArrivalRate, when positive, streams the data into the system at this
	// many bytes per virtual second instead of preloading it; map tasks
	// start on each block as it arrives (the paper's one-pass setting).
	ArrivalRate float64
}

// Run executes job over data on a fresh simulated cluster per cfg.
func Run(cfg Config, data Dataset, job Job) (*Result, error) {
	if cfg.Delta != nil {
		dr, err := RunDelta(cfg, data, job, *cfg.Delta)
		if err != nil {
			return nil, err
		}
		return dr.Incremental, nil
	}
	env := sim.New()
	env.SetWorkers(cfg.Parallelism)
	cl := cluster.New(env, cfg.clusterConfig())
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = dfs.DefaultBlockSize
	}
	d := dfs.New(cl, blockSize, 1)
	if data.Gen == nil {
		return nil, fmt.Errorf("onepass: dataset %q has no generator", data.Path)
	}
	if err := d.RegisterStream(data.Path, data.Size, data.ArrivalRate, data.Gen); err != nil {
		return nil, err
	}
	rt := engine.NewRuntime(env, cl, d)

	job.InputPath = data.Path
	if job.OutputPath == "" {
		job.OutputPath = "out/" + job.Name
	}
	cfg.applyJobDefaults(&job, len(cl.ComputeNodes()))
	return dispatch(cfg, rt, job)
}

// applyJobDefaults fills job fields from the config without clobbering
// job-level settings — job-level wins, as documented on Config. Run and
// Cluster.RunJob both default through here so precedence cannot drift.
func (c Config) applyJobDefaults(job *Job, computeNodes int) {
	if job.Reducers <= 0 {
		if c.Reducers > 0 {
			job.Reducers = c.Reducers
		} else {
			job.Reducers = 2 * computeNodes
		}
	}
	if c.MemoryPerTask > 0 && job.MemoryPerTask == 0 {
		job.MemoryPerTask = c.MemoryPerTask
	}
	if !job.RetainOutput && !job.DiscardOutput {
		job.RetainOutput = c.RetainOutput
		job.DiscardOutput = c.DiscardOutput
	}
}

// dispatch finalizes the runtime from the config — trace sink, audit
// ledger, fault-schedule validation — and routes the job to the selected
// engine. Run and Cluster.RunJob both funnel through here, so every Config
// knob is threaded identically no matter how a job is launched.
func dispatch(cfg Config, rt *engine.Runtime, job Job) (*Result, error) {
	rt.Tracer = cfg.Trace
	if cfg.Audit {
		rt.Audit = engine.NewAudit()
	}
	if err := cfg.Faults.Validate(len(rt.Cluster.Nodes())); err != nil {
		return nil, fmt.Errorf("onepass: %w", err)
	}
	if cfg.DisableMonoid {
		// Strip before any engine sees the job: task clones preserve a nil
		// optional function, so the whole run is monoid-free.
		job.Monoid = nil
	}
	var res *Result
	var err error
	switch cfg.Engine {
	case Hadoop:
		res, err = hadoop.Run(rt, job, hadoop.Options{FanIn: cfg.FanIn, Faults: cfg.Faults})
	case MapReduceOnline:
		res, err = hop.Run(rt, job, hop.Options{
			FanIn:            cfg.FanIn,
			ChunkBytes:       cfg.ChunkBytes,
			DisableSnapshots: cfg.DisableSnapshots,
			Faults:           cfg.Faults,
		})
	case HashHybrid, HashIncremental, HashHotKey:
		mode := core.HybridHash
		if cfg.Engine == HashIncremental {
			mode = core.Incremental
		} else if cfg.Engine == HashHotKey {
			mode = core.HotKey
		}
		res, err = core.Run(rt, job, core.Options{
			Mode:             mode,
			DisablePush:      cfg.DisablePush,
			ChunkBytes:       cfg.ChunkBytes,
			SpillBuckets:     cfg.SpillBuckets,
			HotKeyCounters:   cfg.HotKeyCounters,
			ApproximateEarly: cfg.ApproximateEarly,
			Faults:           cfg.Faults,
		})
	case Resident:
		res, err = resident.Run(rt, job, resident.Options{
			ChunkBytes: cfg.ChunkBytes,
			Faults:     cfg.Faults,
		})
	default:
		return nil, fmt.Errorf("onepass: unknown engine %v", cfg.Engine)
	}
	if err != nil {
		return nil, err
	}
	// An audit failure surfaces as an error but keeps the Result attached so
	// callers can inspect what the run produced anyway.
	return res, res.AuditError()
}

// RunWorkload runs one of the built-in workloads over inputSize bytes of
// its generated dataset.
func RunWorkload(cfg Config, w *Workload, inputSize int64) (*Result, error) {
	return Run(cfg, Dataset{Path: "input/" + w.Name, Size: inputSize, Gen: w.Gen}, w.Job)
}
