package onepass

import (
	"sort"
	"strconv"
	"testing"
)

// TestChainedTopK runs the full two-stage pipeline — page-frequency count,
// then global top-k over its output — on every engine and checks the final
// ranking against a direct recount.
func TestChainedTopK(t *testing.T) {
	const k = 5
	for _, eng := range Engines() {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			cfg := tinyConfig(eng)
			cl := NewCluster(cfg)
			if err := cl.Register(Dataset{Path: "input/clicks", Size: 256 << 10,
				Gen: PageFrequency(tinyClicks()).Gen}); err != nil {
				t.Fatal(err)
			}
			count := PageFrequency(tinyClicks()).Job
			count.InputPath = "input/clicks"
			count.OutputPath = "out/counts"
			count.RetainOutput = true
			res1, err := cl.RunJob(count)
			if err != nil {
				t.Fatal(err)
			}

			top := TopK(k)
			top.InputPath = "out/counts"
			top.RetainOutput = true
			res2, err := cl.RunJob(top)
			if err != nil {
				t.Fatal(err)
			}
			names, counts := ParseTopK(res2.Output["top"])
			if len(names) != k {
				t.Fatalf("top-k has %d entries", len(names))
			}

			// Verify against a direct sort of stage 1's output.
			type pc struct {
				url string
				n   uint64
			}
			var all []pc
			for url, c := range res1.Output {
				n, _ := strconv.ParseUint(c, 10, 64)
				all = append(all, pc{url, n})
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].n != all[j].n {
					return all[i].n > all[j].n
				}
				return all[i].url < all[j].url
			})
			for i := 0; i < k; i++ {
				if names[i] != all[i].url || counts[i] != all[i].n {
					t.Fatalf("rank %d: got %s=%d, want %s=%d", i, names[i], counts[i], all[i].url, all[i].n)
				}
			}
			// Chained job accounting is job-relative.
			if res2.Makespan <= 0 || res2.CPU.Total() <= 0 {
				t.Fatal("stage 2 result lacks its own accounting")
			}
			if res2.CPU.Total() >= res1.CPU.Total() {
				t.Fatalf("stage 2 CPU %.3f should be far below stage 1's %.3f", res2.CPU.Total(), res1.CPU.Total())
			}
		})
	}
}

func TestChainFromDiscardedOutputFails(t *testing.T) {
	cfg := tinyConfig(Hadoop)
	cl := NewCluster(cfg)
	w := PageFrequency(tinyClicks())
	if err := cl.Register(Dataset{Path: "in", Size: 64 << 10, Gen: w.Gen}); err != nil {
		t.Fatal(err)
	}
	count := w.Job
	count.InputPath = "in"
	count.OutputPath = "counts"
	count.DiscardOutput = true // payloads dropped: nothing to chain from
	if _, err := cl.RunJob(count); err != nil {
		t.Fatal(err)
	}
	top := TopK(3)
	top.InputPath = "counts"
	if _, err := cl.RunJob(top); err == nil {
		t.Fatal("chaining from a discarded output must fail loudly")
	}
}

func TestTrendingPipelineAcrossEngines(t *testing.T) {
	const window = 600
	const k = 2
	var want map[string]string
	for _, eng := range Engines() {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			cfg := tinyConfig(eng)
			cl := NewCluster(cfg)
			w := WindowedTopicCounts(tinyClicks(), window)
			if err := cl.Register(Dataset{Path: "events", Size: 256 << 10, Gen: w.Gen}); err != nil {
				t.Fatal(err)
			}
			counts := w.Job
			counts.InputPath = "events"
			counts.OutputPath = "counts"
			if _, err := cl.RunJob(counts); err != nil {
				t.Fatal(err)
			}
			top := TopKPerWindow(k)
			top.InputPath = "counts"
			top.RetainOutput = true
			res, err := cl.RunJob(top)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) == 0 {
				t.Fatal("no windows")
			}
			for win, v := range res.Output {
				names, _ := ParseTopK(v)
				if len(names) == 0 || len(names) > k {
					t.Fatalf("window %s has %d topics", win, len(names))
				}
			}
			if want == nil {
				want = res.Output
				return
			}
			if len(res.Output) != len(want) {
				t.Fatalf("windows = %d, want %d", len(res.Output), len(want))
			}
			for win, v := range want {
				if res.Output[win] != v {
					t.Fatalf("window %s differs across engines", win)
				}
			}
		})
	}
}
