package onepass

import (
	"bytes"
	"encoding/json"
	"testing"
)

// parallelRun executes one audited, traced run at the given intra-run pool
// width and returns the JSON-serialized result plus the Chrome trace bytes.
func parallelRun(t *testing.T, e Engine, w *Workload, workers int) ([]byte, []byte) {
	t.Helper()
	cfg := tinyConfig(e)
	cfg.Audit = true
	cfg.Parallelism = workers
	tl := NewTraceLog()
	cfg.Trace = tl
	res, err := RunWorkload(cfg, w, 256<<10)
	if err != nil {
		t.Fatalf("%v (parallelism %d): %v", e, workers, err)
	}
	rj, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return rj, buf.Bytes()
}

// The tentpole invariant: running real data work on a pool of worker
// goroutines must be unobservable inside the simulation. For every engine,
// serial and pooled runs must serialize to byte-identical results (output
// checksum, counters, makespan, CPU phase accounting) and byte-identical
// Chrome traces, with the runtime invariant audits armed throughout.
func TestParallelIntraRunByteIdentical(t *testing.T) {
	workloads := []struct {
		name string
		make func() *Workload
	}{
		// Sessionization exercises the holistic (list-building) reduce path;
		// per-user count exercises the map-combine aggregator path.
		{"sessionization", func() *Workload { return Sessionization(tinyClicks()) }},
		{"per-user-count", func() *Workload { return PerUserCount(tinyClicks()) }},
	}
	for _, wl := range workloads {
		for _, e := range Engines() {
			baseRes, baseTrace := parallelRun(t, e, wl.make(), 0)
			for _, workers := range []int{1, 4} {
				res, trace := parallelRun(t, e, wl.make(), workers)
				if !bytes.Equal(res, baseRes) {
					t.Errorf("%v/%s: result at parallelism %d differs from serial:\n  serial:   %s\n  parallel: %s",
						e, wl.name, workers, firstDiff(baseRes, res), firstDiff(res, baseRes))
				}
				if !bytes.Equal(trace, baseTrace) {
					t.Errorf("%v/%s: trace at parallelism %d differs from serial (%d vs %d bytes)",
						e, wl.name, workers, len(trace), len(baseTrace))
				}
			}
		}
	}
}

// firstDiff returns a short window of a around the first byte where a and b
// diverge, for readable failure output.
func firstDiff(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := i-30, i+50
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return string(a[lo:hi])
}

// A chained pipeline shares one cluster (and one virtual clock) across
// stages; the pool must not perturb cross-job state either.
func TestParallelIntraRunChainedByteIdentical(t *testing.T) {
	run := func(workers int) []byte {
		cfg := tinyConfig(HashIncremental)
		cfg.Audit = true
		cfg.Parallelism = workers
		cl := NewCluster(cfg)
		w := PageFrequency(tinyClicks())
		if err := cl.Register(Dataset{Path: "in/clicks", Size: 256 << 10, Gen: w.Gen}); err != nil {
			t.Fatal(err)
		}
		stage1 := w.Job
		stage1.InputPath = "in/clicks"
		stage1.OutputPath = "out/counts"
		stage1.RetainOutput = true
		res1, err := cl.RunJob(stage1)
		if err != nil {
			t.Fatal(err)
		}
		stage2 := TopK(5)
		stage2.InputPath = "out/counts"
		stage2.RetainOutput = true
		res2, err := cl.RunJob(stage2)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal([]*Result{res1, res2})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	serial := run(0)
	if pooled := run(4); !bytes.Equal(serial, pooled) {
		t.Fatalf("chained pipeline diverges under the worker pool:\n  at: %s", firstDiff(serial, pooled))
	}
}
