// Topk: a two-stage pipeline on a shared simulated cluster — count page
// visits, then select the global top 10 — exercising the paper's §IV open
// question ("how to support the combine function for complex analytical
// tasks such as top-k"): partial top-k lists are a mergeable bounded state,
// so stage two gets both a combiner and an incremental aggregator and runs
// on the hash engine like any other job.
package main

import (
	"fmt"
	"log"

	"onepass"
)

func main() {
	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.HashIncremental
	cfg.BlockSize = 1 << 20
	cfg.RetainOutput = true
	cl := onepass.NewCluster(cfg)

	w := onepass.PageFrequency(onepass.DefaultClickConfig())
	if err := cl.Register(onepass.Dataset{Path: "input/clicks", Size: 32 << 20, Gen: w.Gen}); err != nil {
		log.Fatal(err)
	}

	// Stage 1: COUNT(*) GROUP BY url.
	count := w.Job
	count.InputPath = "input/clicks"
	count.OutputPath = "out/counts"
	res1, err := cl.RunJob(count)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 (%s): %d distinct pages in %.1fs virtual\n",
		res1.Engine, len(res1.Output), res1.Makespan.Seconds())

	// Stage 2: global top 10 over stage 1's output files.
	top := onepass.TopK(10)
	top.InputPath = "out/counts"
	res2, err := cl.RunJob(top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2 (%s): top-10 in %.2fs virtual (pipeline total %.1fs)\n\n",
		res2.Engine, res2.Makespan.Seconds(), cl.Now())

	names, counts := onepass.ParseTopK(res2.Output["top"])
	fmt.Println("rank  visits  page")
	for i := range names {
		fmt.Printf("%4d  %6d  %s\n", i+1, counts[i], names[i])
	}
}
