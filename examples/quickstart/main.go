// Quickstart: count page visits over a synthetic click stream with the
// hash-based one-pass engine, in ~30 lines of the public API — the paper's
// "SELECT COUNT(*) FROM visits GROUP BY url" example from §II.
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
)

import "onepass"

func main() {
	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.HashIncremental
	cfg.BlockSize = 1 << 20
	cfg.RetainOutput = true

	w := onepass.PageFrequency(onepass.DefaultClickConfig())
	res, err := onepass.RunWorkload(cfg, w, 16<<20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Summary())

	type page struct {
		url    string
		visits uint64
	}
	pages := make([]page, 0, len(res.Output))
	for url, count := range res.Output {
		n, _ := strconv.ParseUint(count, 10, 64)
		pages = append(pages, page{url, n})
	}
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].visits != pages[j].visits {
			return pages[i].visits > pages[j].visits
		}
		return pages[i].url < pages[j].url
	})
	fmt.Println("\nTop 10 pages:")
	for _, p := range pages[:10] {
		fmt.Printf("  %-20s %8d visits\n", p.url, p.visits)
	}
}
