// Clickstream: the paper's headline workload — sessionization — run on
// every engine, showing what the architecture choices buy: the sort-merge
// baselines block until all maps finish and a multi-pass merge completes,
// while the hash engine starts answering as data arrives, with less CPU.
package main

import (
	"fmt"
	"log"
	"strings"

	"onepass"
)

func main() {
	const inputSize = 16 << 20

	fmt.Println("Sessionization of a 16 MB click stream on a simulated 10-node cluster")
	fmt.Println(strings.Repeat("-", 78))
	fmt.Printf("%-18s %10s %10s %14s %14s\n", "engine", "makespan", "cpu-s", "first-answer", "reduce-spill")

	var sessions map[string]string
	for _, eng := range onepass.Engines() {
		cfg := onepass.DefaultConfig()
		cfg.Engine = eng
		cfg.BlockSize = 1 << 20
		cfg.RetainOutput = true

		w := onepass.Sessionization(onepass.DefaultClickConfig())
		res, err := onepass.RunWorkload(cfg, w, inputSize)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %9.1fs %10.1f %13.1fs %14s\n",
			eng, res.Makespan.Seconds(), res.CPU.Total(), res.FirstOutputAt.Seconds(),
			fmtBytes(res.Counters.Get("reduce.spill.bytes")))

		if sessions == nil {
			sessions = res.Output
		} else if len(sessions) != len(res.Output) {
			log.Fatalf("%v disagrees with the first engine: %d vs %d users", eng, len(res.Output), len(sessions))
		}
	}

	fmt.Printf("\nAll engines agree on %d users' sessions. A sample:\n", len(sessions))
	shown := 0
	for user, s := range sessions {
		nSessions := strings.Count(s, "|") + 1
		nClicks := strings.Count(s, ",") + nSessions
		fmt.Printf("  %-10s %3d sessions over %4d clicks\n", user, nSessions, nClicks)
		if shown++; shown == 5 {
			break
		}
	}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
