// Pagerank: the graph query from the paper's ongoing-work benchmark
// extensions, run as iterated MapReduce jobs chained over shared DFS state.
// Rank arithmetic is fixed-point, so every engine produces bit-identical
// ranks — swap the engine below and the numbers will not move.
package main

import (
	"fmt"
	"log"
	"sort"

	"onepass"
)

func main() {
	const iterations = 5

	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.HashIncremental
	cfg.BlockSize = 256 << 10
	cfg.RetainOutput = true
	cl := onepass.NewCluster(cfg)

	graph := onepass.DefaultGraphConfig()
	graph.Nodes = 5000
	init := onepass.PageRankInit(graph)
	if err := cl.Register(onepass.Dataset{
		Path: "graph", Size: graph.TotalBytes(cfg.BlockSize), Gen: init.Gen,
	}); err != nil {
		log.Fatal(err)
	}

	job := init.Job
	job.InputPath = "graph"
	job.OutputPath = "pr/iter-00"
	if _, err := cl.RunJob(job); err != nil {
		log.Fatal(err)
	}

	var last *onepass.Result
	for i := 1; i <= iterations; i++ {
		iter := onepass.PageRankIter(graph.Nodes)
		iter.InputPath = fmt.Sprintf("pr/iter-%02d", i-1)
		iter.OutputPath = fmt.Sprintf("pr/iter-%02d", i)
		res, err := cl.RunJob(iter)
		if err != nil {
			log.Fatal(err)
		}
		last = res
		fmt.Printf("iteration %d: %5.2fs virtual, %d vertices, first output %.2fs\n",
			i, res.Makespan.Seconds(), res.OutputPairs, res.FirstOutputAt.Seconds())
	}

	type vr struct {
		v    string
		rank uint64
	}
	var ranks []vr
	for v, val := range last.Output {
		r, _ := onepass.DecodeRank([]byte(val))
		ranks = append(ranks, vr{v, r})
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].rank != ranks[j].rank {
			return ranks[i].rank > ranks[j].rank
		}
		return ranks[i].v < ranks[j].v
	})
	fmt.Printf("\ntop 10 of %d vertices after %d iterations (pipeline total %.1fs):\n",
		len(ranks), iterations, cl.Now())
	for i := 0; i < 10 && i < len(ranks); i++ {
		fmt.Printf("%4d. %-8s rank %.6f\n", i+1, ranks[i].v,
			float64(ranks[i].rank)/float64(onepass.RankScale))
	}
}
