// Streaming: the paper's opening pitch, end to end. A click stream arrives
// into the system over one virtual minute — there is no separate "load,
// then query" phase. The sort-merge baseline cannot answer until well after
// the stream ends (its merge starts when the data stops); the hash engine's
// per-key states are already complete when the last block lands, and with a
// threshold query it answers *while the stream is still arriving*.
package main

import (
	"fmt"
	"log"

	"onepass"
)

func main() {
	const (
		inputSize   = 16 << 20
		arrivalSecs = 60.0
	)
	rate := float64(inputSize) / arrivalSecs

	fmt.Printf("Per-user click counting over a stream arriving for %.0f s (%.1f MB/s)\n\n",
		arrivalSecs, rate/(1<<20))

	run := func(eng onepass.Engine, threshold uint64) *onepass.Result {
		cfg := onepass.DefaultConfig()
		cfg.Engine = eng
		cfg.BlockSize = 1 << 20
		cfg.RetainOutput = true
		w := onepass.PerUserCount(onepass.DefaultClickConfig())
		job := w.Job
		if threshold > 0 {
			job.EmitWhen = func(key, state []byte) bool {
				return countState(state) >= threshold
			}
		}
		res, err := onepass.Run(cfg, onepass.Dataset{
			Path: "input/clicks", Size: inputSize, Gen: w.Gen, ArrivalRate: rate,
		}, job)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("%-18s %16s %18s\n", "engine", "complete answer", "after last byte")
	for _, eng := range []onepass.Engine{onepass.Hadoop, onepass.MapReduceOnline, onepass.HashIncremental} {
		res := run(eng, 0)
		fmt.Printf("%-18s %15.1fs %+17.1fs\n", eng,
			res.Makespan.Seconds(), res.Makespan.Seconds()-arrivalSecs)
	}

	// With a threshold query, the hash engine doesn't even wait for the
	// stream to finish.
	res := run(onepass.HashIncremental, 200)
	fmt.Printf("\nThreshold query (count >= 200) on hash-incremental:\n")
	fmt.Printf("  first answer at %.1f s — %.0f%% of the stream still to come\n",
		res.FirstOutputAt.Seconds(), 100*(1-res.FirstOutputAt.Seconds()/arrivalSecs))
}

func countState(state []byte) uint64 {
	var n uint64
	for i := 7; i >= 0; i-- {
		n = n<<8 | uint64(state[i])
	}
	return n
}
