// Invertedindex: build a word → postings index over a synthetic web-crawl
// (the paper's second benchmark application) and query it. Demonstrates a
// custom use of the retained output: postings decode back into (doc,
// position) hits.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"

	"onepass"
)

func main() {
	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.HashIncremental
	cfg.BlockSize = 1 << 20
	cfg.RetainOutput = true

	docs := onepass.DefaultDocConfig()
	w := onepass.InvertedIndex(docs)
	res, err := onepass.RunWorkload(cfg, w, 8<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())
	fmt.Printf("index: %d terms\n\n", len(res.Output))

	// Most frequent indexed terms (by posting count).
	type term struct {
		word string
		hits int
	}
	terms := make([]term, 0, len(res.Output))
	for word, postings := range res.Output {
		terms = append(terms, term{word, len(postings) / 8})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].hits != terms[j].hits {
			return terms[i].hits > terms[j].hits
		}
		return terms[i].word < terms[j].word
	})
	fmt.Println("Most frequent indexed terms (stopwords w0..w11 excluded by the map fn):")
	for _, t := range terms[:8] {
		fmt.Printf("  %-8s %6d occurrences\n", t.word, t.hits)
	}

	// Decode one posting list.
	query := terms[0].word
	postings := []byte(res.Output[query])
	fmt.Printf("\nFirst hits for %q:\n", query)
	for off := 0; off < len(postings) && off < 5*8; off += 8 {
		doc := binary.BigEndian.Uint32(postings[off:])
		pos := binary.BigEndian.Uint32(postings[off+4:])
		fmt.Printf("  doc d%-8d position %d\n", doc, pos)
	}
}
