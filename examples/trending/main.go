// Trending: the "Twitter feed analysis" extension from the paper's
// benchmark roadmap, as a streaming two-stage pipeline. Events arrive over
// a minute of virtual time (no loading phase), stage one counts topics per
// tumbling event-time window as the stream flows in, and stage two selects
// each window's hottest topics.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"onepass"
)

func main() {
	const (
		inputSize   = 8 << 20
		arrivalSecs = 60.0
		windowSecs  = 120 // event-time window width
		k           = 3
	)

	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.HashIncremental
	cfg.BlockSize = 512 << 10
	cfg.RetainOutput = true
	cl := onepass.NewCluster(cfg)

	clicks := onepass.DefaultClickConfig()
	w := onepass.WindowedTopicCounts(clicks, windowSecs)
	if err := cl.Register(onepass.Dataset{
		Path: "events", Size: inputSize, Gen: w.Gen,
		ArrivalRate: float64(inputSize) / arrivalSecs,
	}); err != nil {
		log.Fatal(err)
	}

	counts := w.Job
	counts.InputPath = "events"
	counts.OutputPath = "out/window-counts"
	res1, err := cl.RunJob(counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1: %d (window, topic) groups; stream + count took %.1fs virtual\n",
		len(res1.Output), res1.Makespan.Seconds())

	top := onepass.TopKPerWindow(k)
	top.InputPath = "out/window-counts"
	top.RetainOutput = true
	res2, err := cl.RunJob(top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2: per-window top-%d in %.2fs virtual\n\n", k, res2.Makespan.Seconds())

	windows := make([]string, 0, len(res2.Output))
	for win := range res2.Output {
		windows = append(windows, win)
	}
	sort.Strings(windows)
	for _, win := range windows {
		names, counts := onepass.ParseTopK(res2.Output[win])
		var parts []string
		for i := range names {
			parts = append(parts, fmt.Sprintf("%s (%d)", names[i], counts[i]))
		}
		fmt.Printf("%-10s %s\n", win, strings.Join(parts, ", "))
	}
}
