// Onlineagg: incremental one-pass analytics in action — the paper's §IV
// motivating query: "return all groups where the count of items exceeds a
// threshold", with each group emitted the moment it crosses the line, long
// before the job finishes. Also shows the hot-key engine's early
// approximate answers under memory pressure.
package main

import (
	"fmt"
	"log"

	"onepass"
)

func main() {
	const threshold = 500

	// Part 1: threshold query with streaming emission (EmitWhen).
	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.HashIncremental
	cfg.BlockSize = 1 << 20
	cfg.RetainOutput = true

	w := onepass.PerUserCount(onepass.DefaultClickConfig())
	job := w.Job
	job.EmitWhen = func(key, state []byte) bool {
		return countState(state) >= threshold
	}

	res, err := onepass.Run(cfg, onepass.Dataset{
		Path: "input/clicks", Size: 16 << 20, Gen: w.Gen,
	}, job)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Threshold query: users with >= %d clicks\n", threshold)
	fmt.Printf("  job finished at           %7.2fs (virtual)\n", res.Makespan.Seconds())
	fmt.Printf("  first threshold answer at %7.2fs — %.0f%% of the way in\n",
		res.FirstOutputAt.Seconds(),
		100*res.FirstOutputAt.Seconds()/res.Makespan.Seconds())
	heavy := 0
	for _, count := range res.Output {
		if parseUint(count) >= threshold {
			heavy++
		}
	}
	fmt.Printf("  heavy hitters found: %d of %d users\n\n", heavy, len(res.Output))

	// Part 2: hot-key engine under memory pressure — approximate answers
	// for the important keys the instant all input has arrived, before the
	// exact cold-key completion pass.
	cfg2 := onepass.DefaultConfig()
	cfg2.Engine = onepass.HashHotKey
	cfg2.BlockSize = 1 << 20
	cfg2.MemoryPerTask = 16 << 10 // far below the full key-state volume
	cfg2.HotKeyCounters = 1024
	cfg2.ApproximateEarly = true
	cfg2.RetainOutput = true

	res2, err := onepass.RunWorkload(cfg2, onepass.PerUserCount(onepass.DefaultClickConfig()), 16<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Hot-key engine with 16 KB reducer budgets:")
	fmt.Printf("  exact completion at %.2fs; reduce spill %s (cold tail only)\n",
		res2.Makespan.Seconds(), fmtBytes(res2.Counters.Get("reduce.spill.bytes")))
	if len(res2.Snapshots) > 0 {
		s := res2.Snapshots[0]
		fmt.Printf("  early approximate answers: %d hot keys at %.2fs\n", s.Pairs, s.At.Seconds())
	}

	// The progress-vs-accuracy series: how output coverage accumulated
	// against map progress — the trade-off curve behind "early answers".
	if len(res2.Progress) > 0 {
		fmt.Println("\n  progress vs accuracy:")
		fmt.Println("    time      map     coverage  spilled")
		step := len(res2.Progress)/8 + 1
		for i := 0; i < len(res2.Progress); i += step {
			pp := res2.Progress[i]
			printProgress(pp, res2.OutputPairs)
		}
		printProgress(res2.Progress[len(res2.Progress)-1], res2.OutputPairs)
	}
}

func printProgress(pp onepass.ProgressPoint, totalPairs int) {
	cov := 0.0
	if totalPairs > 0 {
		cov = float64(pp.Pairs) / float64(totalPairs)
	}
	fmt.Printf("    %7.2fs  %5.1f%%  %7.1f%%  %s\n",
		pp.At.Seconds(), 100*pp.MapFraction, 100*cov, fmtBytes(float64(pp.SpilledBytes)))
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

func countState(state []byte) uint64 {
	var n uint64
	for i := 7; i >= 0; i-- {
		n = n<<8 | uint64(state[i])
	}
	return n
}

func parseUint(s string) uint64 {
	var n uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + uint64(c-'0')
	}
	return n
}
