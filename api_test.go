package onepass

import (
	"strings"
	"testing"
)

func tinyConfig(e Engine) Config {
	cfg := DefaultConfig()
	cfg.Engine = e
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	cfg.BlockSize = 64 << 10
	cfg.Reducers = 4
	cfg.RetainOutput = true
	return cfg
}

func tinyClicks() ClickConfig {
	c := DefaultClickConfig()
	c.Users = 300
	c.URLs = 150
	return c
}

func TestRunWorkloadAcrossAllEngines(t *testing.T) {
	// Every engine over the public API must agree on the answer.
	var want map[string]string
	for _, e := range Engines() {
		res, err := RunWorkload(tinyConfig(e), PerUserCount(tinyClicks()), 256<<10)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if len(res.Output) == 0 {
			t.Fatalf("%v: empty output", e)
		}
		if want == nil {
			want = res.Output
			continue
		}
		if len(res.Output) != len(want) {
			t.Fatalf("%v: %d keys, want %d", e, len(res.Output), len(want))
		}
		for k, v := range want {
			if res.Output[k] != v {
				t.Fatalf("%v: key %q = %q, want %q", e, res.Output[k], k, v)
			}
		}
	}
}

func TestResultCarriesMetrics(t *testing.T) {
	res, err := RunWorkload(tinyConfig(Hadoop), Sessionization(tinyClicks()), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("no makespan")
	}
	if res.CPU.Total() <= 0 {
		t.Error("no CPU account")
	}
	if res.CPUUtil.Len() == 0 {
		t.Error("no CPU utilization series")
	}
	if res.Timeline == nil || len(res.Timeline.Spans()) == 0 {
		t.Error("no timeline")
	}
	if !strings.Contains(res.Summary(), "hadoop/sessionization") {
		t.Errorf("summary = %q", res.Summary())
	}
}

func TestEngineStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Engines() {
		s := e.String()
		if s == "" || seen[s] {
			t.Fatalf("bad engine string %q", s)
		}
		seen[s] = true
	}
	if !strings.Contains(Engine(42).String(), "42") {
		t.Fatal("unknown engine string")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := tinyConfig(Hadoop)
	w := PerUserCount(tinyClicks())
	if _, err := Run(cfg, Dataset{Path: "x", Size: 100}, w.Job); err == nil {
		t.Fatal("missing generator must error")
	}
	cfg.Engine = Engine(42)
	if _, err := RunWorkload(cfg, w, 1<<10); err == nil {
		t.Fatal("unknown engine must error")
	}
}

func TestConfigTopologies(t *testing.T) {
	ssd := tinyConfig(Hadoop)
	ssd.SSDIntermediate = true
	resSSD, err := RunWorkload(ssd, Sessionization(tinyClicks()), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	split := tinyConfig(Hadoop)
	split.SplitStorageCompute = true
	resSplit, err := RunWorkload(split, Sessionization(tinyClicks()), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if resSSD.OutputPairs == 0 || resSplit.OutputPairs == 0 {
		t.Fatal("topology variants produced no output")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainOutput = true
	cfg.BlockSize = 64 << 10
	cfg.Reducers = 0 // default: 2 per compute node = 20
	res, err := RunWorkload(cfg, PageFrequency(tinyClicks()), 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get("reduce.tasks"); got != 20 {
		t.Fatalf("default reducers = %v, want 20", got)
	}
}

func TestStreamingDatasetViaAPI(t *testing.T) {
	cfg := tinyConfig(HashIncremental)
	w := PerUserCount(tinyClicks())
	res, err := Run(cfg, Dataset{
		Path: "in", Size: 256 << 10, Gen: w.Gen,
		ArrivalRate: float64(256<<10) / 10, // arrives over 10 virtual seconds
	}, w.Job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.Seconds() < 10 {
		t.Fatalf("makespan %v shorter than the arrival window", res.Makespan)
	}
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
}

func TestSpeculationAcrossPushShuffles(t *testing.T) {
	w := PerUserCount(tinyClicks())
	job := w.Job
	job.Speculation = true
	// HOP dedups pushed chunks on (map task, seq), so speculation is safe.
	res, err := Run(tinyConfig(MapReduceOnline), Dataset{Path: "a", Size: 64 << 10, Gen: w.Gen}, job)
	if err != nil {
		t.Fatalf("HOP speculation should work: %v", err)
	}
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
	// The hash engine's pulled leftover blobs carry no seq framing, so
	// push-mode speculation stays rejected there.
	if _, err := Run(tinyConfig(HashIncremental), Dataset{Path: "b", Size: 64 << 10, Gen: w.Gen}, job); err == nil {
		t.Fatal("hash engine with push must reject speculation")
	}
	cfg := tinyConfig(HashIncremental)
	cfg.DisablePush = true
	res, err = Run(cfg, Dataset{Path: "c", Size: 64 << 10, Gen: w.Gen}, job)
	if err != nil {
		t.Fatalf("pull-mode speculation should work: %v", err)
	}
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
}

func TestDeterministicAcrossIdenticalRuns(t *testing.T) {
	for _, eng := range []Engine{Hadoop, HashHotKey} {
		run := func() *Result {
			res, err := RunWorkload(tinyConfig(eng), Sessionization(tinyClicks()), 256<<10)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.Makespan != b.Makespan || a.FirstOutputAt != b.FirstOutputAt ||
			a.OutputPairs != b.OutputPairs || a.CPU.Total() != b.CPU.Total() {
			t.Fatalf("%v: nondeterministic runs: %v/%v vs %v/%v", eng,
				a.Makespan, a.FirstOutputAt, b.Makespan, b.FirstOutputAt)
		}
	}
}

func TestSingleBlockDataset(t *testing.T) {
	cfg := tinyConfig(HashIncremental)
	cfg.BlockSize = 1 << 20 // larger than the 64KB dataset: one block
	res, err := RunWorkload(cfg, PerUserCount(tinyClicks()), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get("map.tasks") != 1 {
		t.Fatalf("map tasks = %v, want 1", res.Counters.Get("map.tasks"))
	}
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
}

func TestProgressThroughPublicAPI(t *testing.T) {
	cfg := tinyConfig(Hadoop)
	w := PerUserCount(tinyClicks())
	job := w.Job
	var mapsDone, reducesDone int
	job.Progress = func(phase string, done, total int) {
		switch phase {
		case "map":
			mapsDone = done
		case "reduce":
			reducesDone = done
		}
	}
	if _, err := Run(cfg, Dataset{Path: "in", Size: 256 << 10, Gen: w.Gen}, job); err != nil {
		t.Fatal(err)
	}
	if mapsDone != 4 || reducesDone != 4 {
		t.Fatalf("progress saw %d maps, %d reduces", mapsDone, reducesDone)
	}
}
