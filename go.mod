module onepass

go 1.22
